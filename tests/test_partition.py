"""Unit tests for thread partitioning (Algorithm 3 + slice scheme)."""

import numpy as np
import pytest

from repro.parallel import nnz_partition, slice_partition
from repro.tensor import CsfTensor, TABLE1_SPECS, generate, random_tensor


class TestNnzPartition:
    @pytest.mark.parametrize("threads", [1, 2, 3, 5, 8, 16])
    def test_leaf_ranges_cover_exactly(self, csf4, threads):
        part = nnz_partition(csf4, threads)
        total = 0
        prev_hi = 0
        for th in range(threads):
            lo, hi = part.leaf_range(th)
            assert lo == prev_hi
            total += hi - lo
            prev_hi = hi
        assert total == csf4.nnz

    @pytest.mark.parametrize("threads", [2, 4, 7])
    def test_loads_balanced_within_one(self, csf4, threads):
        part = nnz_partition(csf4, threads)
        loads = part.per_thread_leaf_counts()
        assert loads.max() - loads.min() <= 1

    def test_starts_are_parents(self, csf4):
        part = nnz_partition(csf4, 5)
        for th in range(6):
            for lvl in range(csf4.ndim - 2, -1, -1):
                child_pos = part.starts[th, lvl + 1]
                if th < 5:  # sentinel row handled separately
                    expected = csf4.find_parent(lvl, np.array([child_pos]))[0]
                    assert part.starts[th, lvl] == expected

    def test_sentinel_row(self, csf4):
        part = nnz_partition(csf4, 3)
        for lvl in range(csf4.ndim):
            assert part.starts[3, lvl] == csf4.fiber_counts[lvl]

    def test_invalid_threads_raise(self, csf4):
        with pytest.raises(ValueError):
            nnz_partition(csf4, 0)

    def test_more_threads_than_nnz(self):
        t = random_tensor((4, 4, 4), nnz=5, seed=0)
        csf = CsfTensor.from_coo(t)
        part = nnz_partition(csf, 16)
        assert part.per_thread_leaf_counts().sum() == csf.nnz

    def test_strategy_label(self, csf4):
        assert nnz_partition(csf4, 2).strategy == "nnz"


class TestSlicePartition:
    @pytest.mark.parametrize("threads", [1, 2, 4, 9])
    def test_leaf_coverage(self, csf4, threads):
        part = slice_partition(csf4, threads)
        assert part.per_thread_leaf_counts().sum() == csf4.nnz

    def test_slice_boundaries_never_split_nodes(self, csf4):
        part = slice_partition(csf4, 4)
        shared = part.shared_boundary_nodes(csf4)
        assert all(len(level) == 0 for level in shared)

    def test_idle_threads_when_few_slices(self):
        t = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=2000, seed=0)
        csf = CsfTensor.from_coo(t)
        assert csf.fiber_counts[0] == 2
        part = slice_partition(csf, 6)
        loads = part.per_thread_leaf_counts()
        assert np.count_nonzero(loads) <= 2  # only 2 threads get work

    def test_strategy_label(self, csf4):
        assert slice_partition(csf4, 2).strategy == "slice"


class TestSharedBoundaries:
    @pytest.mark.parametrize("threads", [2, 3, 6])
    def test_bounded_by_threads_per_level(self, csf4, threads):
        part = nnz_partition(csf4, threads)
        for level_nodes in part.shared_boundary_nodes(csf4):
            assert len(level_nodes) <= threads  # Section II-D bound

    def test_node_ranges_overlap_only_at_boundaries(self, csf4):
        part = nnz_partition(csf4, 4)
        for lvl in range(csf4.ndim - 1):
            for th in range(3):
                _lo1, hi1 = part.node_range(th, lvl)
                lo2, _hi2 = part.node_range(th + 1, lvl)
                assert lo2 >= hi1 - 1  # overlap at most the boundary node

    def test_max_over_mean(self, csf4):
        part = nnz_partition(csf4, 4)
        assert 1.0 <= part.max_over_mean < 1.2
        sl = slice_partition(csf4, 4)
        assert sl.max_over_mean >= 1.0
