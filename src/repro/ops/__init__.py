"""Tensor algebra substrate: KRP, Gram chains, TTM/mTTV/MTTV, dense oracle."""

from .krp import khatri_rao, khatri_rao_chain, khatri_rao_excluding, krp_rows
from .hadamard import (
    cp_gram_norm_sq,
    gram,
    gram_hadamard_chain,
    normalize_columns,
    solve_factor,
)
from .partial import PartialTensor, mttv, mttv_reduce, ttm_last_mode
from .dense_ref import (
    cp_fit,
    cp_reconstruct,
    mttkrp_coo_reference,
    mttkrp_dense,
    partial_mttkrp_dense,
    unfold,
)

__all__ = [
    "khatri_rao",
    "khatri_rao_chain",
    "khatri_rao_excluding",
    "krp_rows",
    "gram",
    "gram_hadamard_chain",
    "solve_factor",
    "normalize_columns",
    "cp_gram_norm_sq",
    "PartialTensor",
    "ttm_last_mode",
    "mttv",
    "mttv_reduce",
    "unfold",
    "mttkrp_dense",
    "mttkrp_coo_reference",
    "partial_mttkrp_dense",
    "cp_reconstruct",
    "cp_fit",
]
