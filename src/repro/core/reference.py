"""Literal per-node rendering of the paper's Algorithms 4-8.

The production kernels in :mod:`repro.core.csf_kernels` re-express the
paper's recursive per-node loops as vectorized level sweeps.  This module
keeps a *per-node interpreted* rendering of the same algorithms — the
``k_i``/``t_i`` vector dataflow of Algorithm 5, per-thread loop-bound
clipping against ``thread_start`` (Alg. 5 lines 1-2), ``T.save``-gated
memoization with thread-shifted replication slots (Section III-B's
"shifting its write location by an amount equal to its thread id"), and
the three mode-u strategies of Algorithms 6-8.

It is O(interpreted Python per tree node) and only suitable for small
tensors, but it serves as a *third* independent oracle (after the dense
einsum and the COO scatter reference): tests assert ``vectorized engine
== per-node algorithm`` for every plan and thread count, pinning the
production kernels to the paper's control flow, not merely to
linear-algebra equivalence.

Thread semantics (matching the engine and Section III-A):

* leaves are partitioned half-open and disjoint;
* at internal levels a boundary node split between threads is *visited by
  both*, each contracting only its owned children — linearity makes the
  partial contributions sum exactly;
* actions that consume **complete** values (reading a memoized ``P^(u)``
  row) run under half-open node ownership so they execute exactly once;
* mode-0 memo writes go to the thread-shifted slot ``node + th`` of a
  ``(m_i + T) × R`` buffer, merged before reuse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..parallel.partition import ThreadPartition, nnz_partition
from ..tensor.csf import CsfTensor
from .memoization import MemoPlan, SAVE_NONE

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """Per-node interpreted memoized MTTKRP (the fidelity oracle).

    Mirrors :class:`repro.core.mttkrp.MemoizedMttkrp`'s public contract:
    ``mode0`` refreshes the memo, ``mode_level`` computes any level.
    """

    def __init__(
        self,
        csf: CsfTensor,
        rank: int,
        *,
        plan: MemoPlan = SAVE_NONE,
        num_threads: int = 1,
    ) -> None:
        plan.validate(csf.ndim)
        self.csf = csf
        self.rank = rank
        self.plan = plan
        self.num_threads = num_threads
        self.partition: ThreadPartition = nnz_partition(csf, num_threads)
        #: (m_i + T) x R replicated buffers, populated by mode0().
        self.memo_buffers: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _level_factors(self, factors: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [np.asarray(factors[m]) for m in self.csf.mode_order]

    def _merged_memo(self, level: int) -> np.ndarray:
        """Sum the thread-shifted slots into the canonical ``m_i × R``.

        Slot ``n + th`` holds thread ``th``'s contribution to node ``n``;
        the merge walks each thread's touched node window (its partition
        range plus the shared boundary node), exactly like
        :meth:`repro.parallel.executor.ReplicatedArray.merge`.
        """
        buf = self.memo_buffers[level]
        m = self.csf.fiber_counts[level]
        out = np.zeros((m, self.rank))
        for th in range(self.num_threads):
            lo = int(self.partition.starts[th, level])
            hi = min(int(self.partition.starts[th + 1, level]) + 1, m)
            if hi > lo:
                out[lo:hi] += buf[lo + th : hi + th]
        return out

    def _children(self, level: int, parent: int, th: int) -> range:
        """Algorithm 5 lines 1-2: the thread-clipped child range of
        ``parent`` at ``level`` (children live at ``level``).

        Internal levels admit the shared boundary node (+1); the leaf
        level stays half-open so every non-zero is consumed once.
        """
        csf, part = self.csf, self.partition
        lo = max(int(part.starts[th, level]), int(csf.ptr[level - 1][parent]))
        hi_thread = int(part.starts[th + 1, level])
        if level < csf.ndim - 1:
            hi_thread += 1  # boundary node shared with the next thread
        hi = min(hi_thread, int(csf.ptr[level - 1][parent + 1]))
        return range(lo, max(lo, hi))

    def _owns(self, level: int, node: int, th: int) -> bool:
        """Half-open ownership for exactly-once actions."""
        part = self.partition
        return part.starts[th, level] <= node < part.starts[th + 1, level]

    # ------------------------------------------------------------------
    # mode 0: upward contraction, memo writes (Algorithm 5 with u = 0)
    # ------------------------------------------------------------------
    def mode0(self, factors: Sequence[np.ndarray]) -> np.ndarray:
        csf, rank = self.csf, self.rank
        lf = self._level_factors(factors)
        d = csf.ndim
        self.memo_buffers = {
            lvl: np.zeros((csf.fiber_counts[lvl] + self.num_threads, rank))
            for lvl in self.plan.save_levels
        }
        out = np.zeros((csf.level_shape(0), rank))

        def contract(level: int, node: int, th: int) -> np.ndarray:
            """t_level[node]: this thread's partial contraction below."""
            if level == d - 1:
                return csf.values[node] * lf[d - 1][csf.idx[d - 1][node]]
            t = np.zeros(rank)
            for child in self._children(level + 1, node, th):
                t_child = contract(level + 1, child, th)
                if level + 1 < d - 1:
                    if self.plan.saves(level + 1):
                        self.memo_buffers[level + 1][child + th] += t_child
                    t += t_child * lf[level + 1][csf.idx[level + 1][child]]
                else:
                    t += t_child
            return t

        for th in range(self.num_threads):
            part = self.partition
            lo = int(part.starts[th, 0])
            hi = min(int(part.starts[th + 1, 0]) + 1, csf.fiber_counts[0])
            for node in range(lo, hi):
                t0 = contract(0, node, th)
                if self.plan.saves(0):  # never true (level 0 unsaveable)
                    raise AssertionError
                out[csf.idx[0][node]] += t0
        return out

    # ------------------------------------------------------------------
    # modes u > 0 (Algorithms 6-8)
    # ------------------------------------------------------------------
    def mode_level(self, factors: Sequence[np.ndarray], u: int) -> np.ndarray:
        csf, rank = self.csf, self.rank
        d = csf.ndim
        if u == 0:
            return self.mode0(factors)
        lf = self._level_factors(factors)
        out = np.zeros((csf.level_shape(u), rank))
        source = self.plan.source_level(u, d) if u < d - 1 else d - 1
        memo = (
            self._merged_memo(source)
            if source < d - 1 and source in self.memo_buffers
            else None
        )
        if source < d - 1 and memo is None:
            raise RuntimeError("mode0 has not populated the saved partials")

        def contract_from(level: int, node: int, th: int) -> np.ndarray:
            """Partial t_level[node] rebuilt from the source downward."""
            if level == source:
                if memo is not None:
                    # Complete value: consume under half-open ownership.
                    return (
                        memo[node].copy()
                        if self._owns(level, node, th)
                        else np.zeros(rank)
                    )
                # source == d-1: leaves (disjoint by partition).
                return csf.values[node] * lf[d - 1][csf.idx[d - 1][node]]
            t = np.zeros(rank)
            for child in self._children(level + 1, node, th):
                t_child = contract_from(level + 1, child, th)
                if level + 1 < d - 1:
                    # mTTV step: fold in the child level's factor row.
                    # (Leaf children already carry val · A^(leaf)[l,:].)
                    t_child = t_child * lf[level + 1][csf.idx[level + 1][child]]
                t += t_child
            return t

        # The k vector extends with the *current* node's factor row before
        # descending (k_i = k_{i-1} ⊙ A^(i)[idx], Alg. 5 line 7); the
        # update at level u is Ā^(u)[idx] += k_{u-1} ⊙ t_u (line 18).
        def descend(level: int, node: int, k: np.ndarray, th: int) -> None:
            if level == u:
                if u == d - 1:
                    out[csf.idx[u][node]] += csf.values[node] * k
                elif source == u:
                    if self._owns(u, node, th):
                        out[csf.idx[u][node]] += k * memo[node]
                else:
                    out[csf.idx[u][node]] += k * contract_from(u, node, th)
                return
            k_here = k * lf[level][csf.idx[level][node]]
            for child in self._children(level + 1, node, th):
                descend(level + 1, child, k_here, th)

        for th in range(self.num_threads):
            part = self.partition
            lo = int(part.starts[th, 0])
            hi = min(int(part.starts[th + 1, 0]) + 1, csf.fiber_counts[0])
            for node in range(lo, hi):
                descend(0, node, np.ones(rank), th)
        return out

    def iteration_results(self, factors: Sequence[np.ndarray]):
        """All d MTTKRPs in level order (mode0 first), like the engine."""
        out = [(self.csf.mode_order[0], self.mode0(factors))]
        for u in range(1, self.csf.ndim):
            out.append((self.csf.mode_order[u], self.mode_level(factors, u)))
        return out
