"""SPLATT-style baselines: splatt-1, splatt-2, splatt-all.

SPLATT (Smith et al., IPDPS 2015) computes every per-mode MTTKRP from CSF
representations *without* memoizing partial results.  The paper benchmarks
three variants differing in how many tensor copies they hold
(Section VI-B):

* **splatt-1** — a single CSF; the MTTKRP for level ``u`` re-traverses the
  tree from the top every time (our engine with the empty memo plan —
  exactly Fig. 1d for every non-root mode).
* **splatt-2** — two CSFs, one rooted at the shortest mode and one at the
  longest; each mode's MTTKRP runs on the tree where that mode sits
  closest to the root (cheaper ``k``-sweep, better output locality).
* **splatt-all** — one CSF per mode; every MTTKRP is a pure root-mode
  upward sweep on its own tree.  This is the normalization baseline of
  Figures 3 and 4.

All variants use the prior-work *slice* work distribution — that, plus no
memoization, is what STeF improves on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..core.memoization import SAVE_NONE
from ..core.mttkrp import MemoizedMttkrp
from ..engines.base import EngineBase, resolve_num_threads
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..tensor.csf import CsfTensor, default_mode_order
from ..trace import NULL_TRACER, Tracer

__all__ = ["Splatt1", "Splatt2", "SplattAll"]


class Splatt1(EngineBase):
    """Single-CSF SPLATT: no memoization, slice distribution."""

    name = "splatt-1"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        self.tracer = tracer
        self.csf = CsfTensor.from_coo(tensor, default_mode_order(tensor.shape))
        self.engine = MemoizedMttkrp(
            self.csf,
            rank,
            plan=SAVE_NONE,
            num_threads=resolve_num_threads(machine, num_threads),
            partition="slice",
            exec_backend=exec_backend,
            counter=counter,
            tracer=tracer,
        )
        self.mode_order: Tuple[int, ...] = self.csf.mode_order

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """MTTKRP at ``level``; levels > 0 re-traverse the whole tree."""
        if level == 0:
            return self.engine.mode0(factors)
        return self.engine.mode_level(factors, level)

    def level_load_factor(self, level: int) -> float:
        """Imbalance stretch of the slice schedule (level-independent)."""
        return self.engine.partition.max_over_mean

    @property
    def num_threads(self) -> int:
        return self.engine.num_threads

    def per_thread_traffic(self) -> List[float]:
        return self.engine.shards.per_thread_totals()

    def close(self) -> None:
        """Release the inner engine's resources (shm under processes)."""
        self.engine.close()

    def tensor_bytes(self) -> int:
        """Tensor storage footprint (one CSF copy)."""
        return self.csf.total_bytes()

    def describe(self) -> str:
        return f"{self.name}: order={self.mode_order}"


class SplattAll(EngineBase):
    """One CSF per mode: every MTTKRP is a root-mode sweep."""

    name = "splatt-all"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        d = tensor.ndim
        self.mode_order: Tuple[int, ...] = tuple(range(d))
        self.engines: List[MemoizedMttkrp] = []
        self.csfs: List[CsfTensor] = []
        for mode in range(d):
            rest = sorted(
                (m for m in range(d) if m != mode),
                key=lambda m: (tensor.shape[m], m),
            )
            csf = CsfTensor.from_coo(tensor, (mode, *rest))
            self.csfs.append(csf)
            self.engines.append(
                MemoizedMttkrp(
                    csf,
                    rank,
                    plan=SAVE_NONE,
                    num_threads=threads,
                    partition="slice",
                    exec_backend=exec_backend,
                    counter=counter,
                    tracer=tracer,
                )
            )
        self._last_engine = self.engines[0] if self.engines else None

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """Mode-``level`` MTTKRP as a root sweep on its dedicated CSF."""
        self._last_engine = self.engines[level]
        return self.engines[level].mode0(factors)

    def level_load_factor(self, level: int) -> float:
        """Imbalance stretch of the slice schedule of ``level``'s tree."""
        return self.engines[level].partition.max_over_mean

    @property
    def num_threads(self) -> int:
        return self.engines[0].num_threads

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread totals (each mode has its own
        engine; report the one that last ran)."""
        if self._last_engine is None:
            return []
        return self._last_engine.shards.per_thread_totals()

    def close(self) -> None:
        """Release every per-mode engine's resources."""
        for eng in self.engines:
            eng.close()

    def tensor_bytes(self) -> int:
        """Tensor storage footprint (``d`` CSF copies)."""
        return sum(c.total_bytes() for c in self.csfs)

    def describe(self) -> str:
        return f"{self.name}: {len(self.engines)} CSF copies"


class Splatt2(EngineBase):
    """Two CSFs — one rooted at the shortest mode, one at the longest.

    Each mode's MTTKRP runs on the tree where it sits at the smaller
    level (ties favour the base tree).
    """

    name = "splatt-2"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        d = tensor.ndim
        base_order = default_mode_order(tensor.shape)
        longest = base_order[-1]
        rest = sorted(
            (m for m in range(d) if m != longest),
            key=lambda m: (tensor.shape[m], m),
        )
        alt_order = (longest, *rest)
        self.csf_a = CsfTensor.from_coo(tensor, base_order)
        self.csf_b = CsfTensor.from_coo(tensor, alt_order)
        kwargs = dict(
            plan=SAVE_NONE,
            num_threads=threads,
            partition="slice",
            exec_backend=exec_backend,
            counter=counter,
            tracer=tracer,
        )
        self.engine_a = MemoizedMttkrp(self.csf_a, rank, **kwargs)
        self.engine_b = MemoizedMttkrp(self.csf_b, rank, **kwargs)
        self.mode_order: Tuple[int, ...] = tuple(range(d))
        # mode -> (engine, level-in-that-engine's CSF)
        self._dispatch: Dict[int, Tuple[MemoizedMttkrp, int]] = {}
        for mode in range(d):
            lvl_a = base_order.index(mode)
            lvl_b = alt_order.index(mode)
            if lvl_b < lvl_a:
                self._dispatch[mode] = (self.engine_b, lvl_b)
            else:
                self._dispatch[mode] = (self.engine_a, lvl_a)
        self._last_engine = self.engine_a

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """Mode-``level`` MTTKRP on whichever tree holds it shallower."""
        engine, lvl = self._dispatch[level]
        self._last_engine = engine
        if lvl == 0:
            return engine.mode0(factors)
        # No memo plan -> mode_level recomputes from scratch; it only
        # requires that a sweep has populated nothing, which SAVE_NONE
        # guarantees.
        return engine.mode_level(factors, lvl)

    def level_load_factor(self, level: int) -> float:
        """Imbalance stretch of whichever tree serves ``level``."""
        engine, _lvl = self._dispatch[level]
        return engine.partition.max_over_mean

    @property
    def num_threads(self) -> int:
        return self.engine_a.num_threads

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread totals (from whichever tree's
        engine last ran)."""
        return self._last_engine.shards.per_thread_totals()

    def close(self) -> None:
        """Release both trees' engine resources."""
        self.engine_a.close()
        self.engine_b.close()

    def tensor_bytes(self) -> int:
        """Tensor storage footprint (two CSF copies)."""
        return self.csf_a.total_bytes() + self.csf_b.total_bytes()

    def describe(self) -> str:
        return (
            f"{self.name}: orders {self.csf_a.mode_order} + {self.csf_b.mode_order}"
        )
