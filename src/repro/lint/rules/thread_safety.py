"""``thread-body-safety`` — the write-conflict invariant of the threads
backend (paper Sections II-D / III-A; DESIGN.md §8).

Functions handed to :meth:`SimulatedPool.map` run concurrently under the
``threads`` backend, where NumPy releases the GIL.  The race-freedom
contract (PR "race-free threads backend") is that a thread body only

* *computes* on thread-private data,
* charges traffic to its **own shard** (``shards.shard(th)``), never a
  shared :class:`~repro.parallel.counters.TrafficCounter`,
* writes output only through thread-private views
  (``ReplicatedArray.view(th, ...)`` slices or local temporaries),
* and leaves the merge/reset lifecycle to the coordinator.

This rule flags, inside any detected thread body:

1. calls to ``merge`` / ``merge_into`` / ``reset`` (coordinator-only
   lifecycle — a thread-side reset silently corrupts other threads);
2. traffic charges (``read``/``write``/``flop``/``read_factor_rows``/
   ``write_factor_rows``/``scatter_update``) whose receiver is not a
   per-thread shard — a shared counter's ``+=`` is a read-modify-write
   that loses increments under concurrency;
3. stores to non-local state: attribute writes rooted at closure or
   ``self`` names, subscript writes into closure arrays (unless the
   target comes from a ``.view(...)`` call), and ``global``/``nonlocal``
   declarations.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..astutils import (
    dotted_name,
    expr_text,
    find_thread_bodies,
    local_names,
    receiver_of,
)
from ..framework import FileContext, Finding, Rule, register

#: Methods that charge a counter (TrafficCounter's public charge API).
CHARGE_METHODS = frozenset(
    {"read", "write", "flop", "read_factor_rows", "write_factor_rows", "scatter_update"}
)
#: Charge methods whose names are unambiguous (no stdlib collision like
#: ``fh.read()``): any non-shard receiver is flagged.
UNAMBIGUOUS_CHARGE = frozenset(
    {"flop", "read_factor_rows", "write_factor_rows", "scatter_update"}
)
#: Coordinator-only lifecycle methods (ReplicatedArray / sharded counter).
LIFECYCLE_METHODS = frozenset({"merge", "merge_into", "reset"})


def _is_shard_call(node: ast.AST) -> bool:
    """``<expr>.shard(...)`` — the blessed per-thread counter accessor."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "shard"
    )


def _is_view_call(node: ast.AST) -> bool:
    """``<expr>.view(...)`` — the blessed thread-private output window."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "view"
    )


def _subscript_root(node: ast.AST) -> ast.AST:
    """Peel subscripts/attributes: the base object of ``a.b[i][j]``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node


@register
class ThreadBodySafetyRule(Rule):
    id = "thread-body-safety"
    description = (
        "thread bodies must not charge shared counters, call merge()/"
        "reset(), or write closure/instance state"
    )
    paper_ref = "Sections II-D, III-A (conflict-free per-thread writes)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for body_fn, _spawn in find_thread_bodies(ctx.tree).items():
            locals_ = local_names(body_fn)
            shard_locals: Set[str] = set()
            counter_locals: Set[str] = set()
            stmts = body_fn.body if isinstance(body_fn.body, list) else [body_fn.body]
            # Pass 1: light taint — locals bound to shards vs counters.
            for stmt in stmts:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target = node.targets[0]
                        if isinstance(target, ast.Name):
                            if _is_shard_call(node.value):
                                shard_locals.add(target.id)
                            elif "counter" in expr_text(node.value).lower():
                                counter_locals.add(target.id)
            # Pass 2: the actual checks.
            for stmt in stmts:
                for node in ast.walk(stmt):
                    yield from self._check_node(
                        ctx, node, locals_, shard_locals, counter_locals
                    )

    # ------------------------------------------------------------------
    def _check_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        locals_: Set[str],
        shard_locals: Set[str],
        counter_locals: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            yield ctx.finding(
                self.id,
                node,
                f"thread body declares `{kind} {', '.join(node.names)}`: "
                "thread bodies must not rebind shared state",
            )
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in LIFECYCLE_METHODS:
                recv = expr_text(node.func.value)
                yield ctx.finding(
                    self.id,
                    node,
                    f"`{recv}.{method}()` inside a thread body: merge/reset "
                    "are coordinator-only lifecycle operations",
                )
                return
            if method in CHARGE_METHODS:
                yield from self._check_charge(
                    ctx, node, method, shard_locals, counter_locals
                )
                return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                yield from self._check_store(ctx, node, target, locals_)

    def _check_charge(
        self,
        ctx: FileContext,
        node: ast.Call,
        method: str,
        shard_locals: Set[str],
        counter_locals: Set[str],
    ) -> Iterator[Finding]:
        recv = receiver_of(node)
        if recv is None:
            return
        if _is_shard_call(recv):
            return  # `shards.shard(th).read(...)` — thread-private
        if isinstance(recv, ast.Name) and recv.id in shard_locals:
            return  # `shard = shards.shard(th); shard.read(...)`
        recv_text = expr_text(recv)
        counter_ish = (
            "counter" in recv_text.lower()
            or (isinstance(recv, ast.Name) and recv.id in counter_locals)
        )
        if method in UNAMBIGUOUS_CHARGE or counter_ish:
            yield ctx.finding(
                self.id,
                node,
                f"`{recv_text}.{method}(...)` inside a thread body charges a "
                "shared counter; charge this thread's shard "
                "(`shards.shard(th)`) instead — shared `+=` loses updates "
                "once NumPy releases the GIL",
            )

    def _check_store(
        self, ctx: FileContext, stmt: ast.AST, target: ast.AST, locals_: Set[str]
    ) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_store(ctx, stmt, elt, locals_)
            return
        if isinstance(target, ast.Attribute):
            root = _subscript_root(target)
            if isinstance(root, ast.Name) and root.id in locals_:
                return
            yield ctx.finding(
                self.id,
                stmt,
                f"thread body writes shared attribute `{expr_text(target)}`; "
                "return the value and let the coordinator store it",
            )
        elif isinstance(target, ast.Subscript):
            root = _subscript_root(target)
            if _is_view_call(root):
                return  # rep.view(th, lo, hi)[...] = ... — thread-private
            if isinstance(root, ast.Name) and root.id in locals_:
                return
            yield ctx.finding(
                self.id,
                stmt,
                f"thread body writes into shared buffer "
                f"`{expr_text(target)}`; use a `ReplicatedArray.view(th, "
                "...)` slice or return the contribution for the "
                "coordinator to merge",
            )
