"""Figure 4 — performance relative to splatt-all on the 64-core AMD
Threadripper machine model, R ∈ {32, 64}.

Same series as Figure 3 on the second machine: more threads (slice-based
schemes starve harder on few-slice tensors) and a 10x larger L3 (the
``DM_factor`` cache rule keeps more factor matrices resident, shifting
which tensors hit the paper's "sharp slow down" cases).
"""

import pytest

from common import bench_suite, bench_tensor, emit
from repro.analysis import (
    format_table,
    geomean_speedups,
    relative_performance,
    run_comparison,
)
from repro.cpd import random_init
from repro.engines import create_engine
from repro.parallel import AMD_TR_64

METHODS = ("stef", "stef2", "adatm", "alto", "splatt-1", "splatt-2", "splatt-all", "taco")
MACHINE = AMD_TR_64


@pytest.mark.parametrize("rank", [32, 64])
def test_figure4_series(benchmark, rank):
    grid = benchmark.pedantic(
        run_comparison,
        args=(bench_suite(),),
        kwargs=dict(rank=rank, machine=MACHINE, methods=METHODS),
        rounds=1,
        iterations=1,
    )
    rel = relative_performance(grid)
    table = format_table(
        rel,
        list(METHODS),
        title=(
            f"Figure 4 — perf relative to splatt-all "
            f"({MACHINE.name}, R={rank}, simulated-traffic channel)"
        ),
    )
    lines = [table, ""]
    for method in ("stef", "stef2"):
        sp = geomean_speedups(rel, method, [m for m in METHODS if m != method])
        pretty = ", ".join(f"{k}: {v:.2f}x" for k, v in sp.items())
        lines.append(f"geomean speedup of {method}: {pretty}")
    emit(f"fig4_amd_r{rank}.txt", "\n".join(lines))


@pytest.mark.parametrize("method", ["stef", "stef2", "splatt-all", "alto"])
def test_mttkrp_set_wall_time_vast(benchmark, method):
    """Wall-clock of one MTTKRP set on the load-balance stress tensor."""
    tensor = bench_tensor("vast-2015-mc1-3d")
    rank = 32
    factors = random_init(tensor.shape, rank, 0)
    with create_engine(
        method, tensor, rank, machine=MACHINE, num_threads=8
    ) as backend:

        def one_set():
            for level in range(tensor.ndim):
                backend.mttkrp_level(factors, level)

        benchmark.pedantic(one_set, rounds=3, iterations=1, warmup_rounds=1)
