"""The sparsity-aware data-movement model (Section IV-C).

The model predicts the element traffic of one full CPD iteration (the set
of ``d`` MTTKRPs) for a given *configuration* — a memoization plan plus a
mode order — using only the per-level fiber counts ``m_i``, the mode
lengths ``N_i``, the rank ``R`` and the machine's cache capacity.  It is
deliberately coarse (whole-matrix cache residency, no partial reuse), which
is what makes it cheap enough to evaluate for every configuration
exhaustively (:mod:`repro.core.planner`).

Paper formulas, with the two obvious typographical slips repaired (noted
inline):

* ``DM_factor_i(x)`` — ``x·R`` when the level's factor matrix exceeds
  cache, ``min(N_i·R, x·R)`` otherwise.
* ``DM_no_mem_read(u) = Σ_j (2·m_j + DM_factor_j(m_j))`` — full CSF
  traversal: two index-ish elements per fiber (index + pointer at internal
  levels, index + value at the leaf level) plus the factor-row gathers.
* ``DM_mem_k_read(u) = Σ_{j<k} (2·m_j + DM_factor_j(m_j)) + m_k·R`` —
  traverse only the levels above the saved partial, then stream the
  partial itself.  (The paper's summand places the ``m·R`` term inside the
  sum; reading the *one* saved ``P^(k)`` once is the physically meaningful
  cost and is what we implement.)
* ``DM_write(0) = n_0·R + Σ_{i∈M} m_i·R`` — mode-0 writes its output plus
  every saved partial.
* ``DM_read(0) = DM_no_mem_read(0) + Σ_{i∈M} m_i·R`` — the memo volume is
  charged on the *read* side of mode 0 as well.  Physically this is
  write-allocate traffic: streaming stores to the freshly allocated
  ``P^(i)`` buffers read each cache line before overwriting it.  The term
  matters: without it the model memoizes hyper-sparse tensors
  (``m_i ≈ nnz``) whose partials Table II shows the paper's model rejects
  (freebase rows with ratio 0.00).
* ``DM_write(u>0) = DM_factor_u(m_u)`` — output scatter with cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..parallel.machine import MachineSpec
from .memoization import MemoPlan

__all__ = ["TensorStats", "DataMovementModel", "ModelBreakdown"]


@dataclass(frozen=True)
class TensorStats:
    """The sufficient statistics the model needs about one CSF layout.

    Attributes
    ----------
    fiber_counts:
        ``m_i`` per level (``m_{d-1}`` = nnz).
    level_lengths:
        Dense mode length ``N_i`` of the mode stored at each level.
    mode_order:
        The CSF layout these stats describe (bookkeeping only).
    """

    fiber_counts: Tuple[int, ...]
    level_lengths: Tuple[int, ...]
    mode_order: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.fiber_counts)

    @classmethod
    def from_csf(cls, csf) -> "TensorStats":
        """Extract stats from a built :class:`~repro.tensor.csf.CsfTensor`."""
        return cls(
            fiber_counts=tuple(csf.fiber_counts),
            level_lengths=tuple(csf.level_shape(i) for i in range(csf.ndim)),
            mode_order=tuple(csf.mode_order),
        )

    def with_swapped_last_two(self, swapped_m: int) -> "TensorStats":
        """Stats for the last-two-mode-swapped layout.

        Only ``m_{d-2}`` changes (Algorithm 9 computes it); every shallower
        level keeps its fiber count and the leaf count is always nnz.
        """
        d = self.ndim
        fibers = list(self.fiber_counts)
        fibers[d - 2] = int(swapped_m)
        lengths = list(self.level_lengths)
        lengths[d - 2], lengths[d - 1] = lengths[d - 1], lengths[d - 2]
        order = list(self.mode_order)
        order[d - 2], order[d - 1] = order[d - 1], order[d - 2]
        return TensorStats(tuple(fibers), tuple(lengths), tuple(order))


@dataclass(frozen=True)
class ModelBreakdown:
    """Per-mode read/write predictions plus the total."""

    reads_per_mode: Tuple[float, ...]
    writes_per_mode: Tuple[float, ...]

    @property
    def total_reads(self) -> float:
        return float(sum(self.reads_per_mode))

    @property
    def total_writes(self) -> float:
        return float(sum(self.writes_per_mode))

    @property
    def total(self) -> float:
        """Total predicted element traffic for one CPD iteration."""
        return self.total_reads + self.total_writes


class DataMovementModel:
    """Evaluates the Section IV-C traffic formulas for configurations.

    Parameters
    ----------
    stats:
        Fiber counts / lengths of the CSF layout under evaluation.
    rank:
        Decomposition rank ``R``.
    machine:
        Supplies the cache capacity for the ``DM_factor`` rule.  Pass
        ``None`` for a cache-less model (all accesses streaming).
    """

    def __init__(
        self,
        stats: TensorStats,
        rank: int,
        machine: Optional[MachineSpec] = None,
    ) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.stats = stats
        self.rank = rank
        self.cache_elements = machine.cache_elements if machine else None

    # ------------------------------------------------------------------
    def dm_factor(self, level: int, accesses: float) -> float:
        """``DM_factor_i(x)``: factor-row gather traffic with the
        whole-matrix cache-residency rule."""
        footprint = self.stats.level_lengths[level] * self.rank
        stream = accesses * self.rank
        if self.cache_elements is not None and footprint <= self.cache_elements:
            return float(min(footprint, stream))
        return float(stream)

    def dm_no_mem_read(self) -> float:
        """Full-CSF-traversal read volume (one from-scratch MTTKRP)."""
        m = self.stats.fiber_counts
        return float(
            sum(2 * m[j] + self.dm_factor(j, m[j]) for j in range(self.stats.ndim))
        )

    def dm_mem_k_read(self, k: int) -> float:
        """Read volume when resuming from a saved ``P^(k)``: traverse
        levels ``0..k-1`` plus stream the saved partial."""
        m = self.stats.fiber_counts
        upper = sum(2 * m[j] + self.dm_factor(j, m[j]) for j in range(k))
        return float(upper + m[k] * self.rank)

    # ------------------------------------------------------------------
    def mode_read(self, u: int, plan: MemoPlan) -> float:
        """``DM_read(u)`` for one mode-level ``u``."""
        d = self.stats.ndim
        m = self.stats.fiber_counts
        if u == 0:
            memo_write_allocate = sum(m[i] * self.rank for i in plan.save_levels)
            return self.dm_no_mem_read() + memo_write_allocate
        k = plan.source_level(u, d)
        if k <= d - 2 and plan.saves(k):
            return self.dm_mem_k_read(k)
        return self.dm_no_mem_read()

    def mode_write(self, u: int, plan: MemoPlan) -> float:
        """``DM_write(u)`` for one mode-level ``u``."""
        m = self.stats.fiber_counts
        if u == 0:
            memo = sum(m[i] * self.rank for i in plan.save_levels)
            return float(self.stats.level_lengths[0] * self.rank + memo)
        return self.dm_factor(u, m[u])

    # ------------------------------------------------------------------
    def breakdown(self, plan: MemoPlan) -> ModelBreakdown:
        """Per-mode predictions for one full CPD iteration under ``plan``."""
        d = self.stats.ndim
        plan.validate(d)
        reads = tuple(self.mode_read(u, plan) for u in range(d))
        writes = tuple(self.mode_write(u, plan) for u in range(d))
        return ModelBreakdown(reads, writes)

    def total(self, plan: MemoPlan) -> float:
        """Total predicted element traffic under ``plan``."""
        return self.breakdown(plan).total
