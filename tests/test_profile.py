"""Tests for the per-mode profiling layer."""

import numpy as np
import pytest

from repro.analysis import profile_method
from repro.engines import EngineBase
from repro.parallel import INTEL_CLX_18
from repro.tensor import TABLE1_SPECS, generate, random_tensor


@pytest.fixture(scope="module")
def nell2():
    return generate(TABLE1_SPECS["nell-2"], nnz=3000, seed=0)


class TestProfileMethod:
    def test_levels_cover_all_modes(self, nell2):
        p = profile_method(
            "stef", nell2, 16, INTEL_CLX_18, num_threads=4, tensor_name="nell-2"
        )
        assert sorted(lv.mode for lv in p.levels) == list(range(nell2.ndim))
        assert all(lv.traffic > 0 for lv in p.levels)
        assert all(lv.seconds > 0 for lv in p.levels)

    def test_category_deltas_sum_to_totals(self, nell2):
        p = profile_method(
            "stef", nell2, 16, INTEL_CLX_18, num_threads=4, tensor_name="nell-2"
        )
        for lv in p.levels:
            traffic_cats = sum(
                v for k, v in lv.categories.items() if not k.startswith("f:")
            )
            assert np.isclose(traffic_cats, lv.traffic)
            flop_cats = sum(
                v for k, v in lv.categories.items() if k.startswith("f:")
            )
            assert np.isclose(flop_cats, lv.flops)

    def test_bottleneck_is_max(self, nell2):
        p = profile_method(
            "stef", nell2, 16, INTEL_CLX_18, num_threads=4, tensor_name="nell-2"
        )
        assert p.bottleneck_level().seconds == max(lv.seconds for lv in p.levels)

    def test_nell2_leaf_mode_is_stefs_bottleneck(self, nell2):
        """The paper's diagnosis: STeF's weak kernel on nell-2 is the
        leaf-mode MTTV; the profile must name that level the bottleneck,
        dominated by output scatter."""
        p = profile_method(
            "stef", nell2, 32, INTEL_CLX_18, num_threads=8, tensor_name="nell-2"
        )
        bott = p.bottleneck_level()
        assert bott.level == nell2.ndim - 1
        assert bott.dominant_category() in ("w:output", "r:output")

    def test_stef2_moves_the_bottleneck(self, nell2):
        """STeF2's second CSF removes the leaf-mode scatter."""
        p1 = profile_method(
            "stef", nell2, 32, INTEL_CLX_18, num_threads=8, tensor_name="nell-2"
        )
        p2 = profile_method(
            "stef2", nell2, 32, INTEL_CLX_18, num_threads=8, tensor_name="nell-2"
        )
        leaf = nell2.ndim - 1
        assert p2.levels[leaf].seconds < p1.levels[leaf].seconds

    def test_format_output(self, nell2):
        p = profile_method(
            "alto", nell2, 8, INTEL_CLX_18, num_threads=2, tensor_name="nell-2"
        )
        text = p.format()
        assert "bottleneck" in text
        assert "alto" in text

    def test_every_backend_profiles(self, nell2):
        from repro.baselines import ALL_BACKENDS

        for method in ALL_BACKENDS:
            p = profile_method(
                method, nell2, 8, INTEL_CLX_18, num_threads=2,
                tensor_name="nell-2",
            )
            assert len(p.levels) == nell2.ndim, method


class TestCliProfile:
    def test_profile_subcommand(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["profile", "uber", "--nnz", "600", "--rank", "8",
             "--threads", "2", "--backend", "stef2"],
            out=out,
        )
        assert code == 0
        assert "bottleneck" in out.getvalue()


class TestCounterCorruptionDetection:
    """``profile_method`` must refuse to silently drop shrinking tallies
    (it previously skipped negative per-category deltas, masking counter
    corruption such as lost concurrent updates or stray resets)."""

    class _CorruptingBackend(EngineBase):
        name = "corrupt"
        levels_before_reset = 1

        def __init__(self, tensor, rank, *, machine=None, num_threads=None,
                     counter=None, **opts):
            self.counter = counter
            self.mode_order = tuple(range(tensor.ndim))

        def mttkrp_level(self, factors, level):
            if level < self.levels_before_reset:
                self.counter.read(50, "structure")
                self.counter.flop(10, "sweep")
            else:
                # Simulates lost updates: tallies go backwards.
                self.counter.reset()
                self.counter.read(1, "structure")
            return np.zeros((len(factors[self.mode_order[level]]), 1))

        def level_load_factor(self, level):
            return 1.0

    def test_negative_category_delta_raises(self, nell2, monkeypatch):
        from repro.engines import ENGINES, engine_names

        engine_names()  # force registry seeding before patching
        monkeypatch.setitem(ENGINES, "corrupt", self._CorruptingBackend)
        with pytest.raises(RuntimeError, match="counter corruption"):
            profile_method("corrupt", nell2, 4, INTEL_CLX_18, num_threads=2)

    def test_healthy_backend_unaffected(self, nell2):
        p = profile_method(
            "stef", nell2, 8, INTEL_CLX_18, num_threads=2,
            tensor_name="nell-2", exec_backend="threads",
        )
        assert len(p.levels) == nell2.ndim

    def test_threads_profile_matches_serial(self, nell2):
        serial = profile_method(
            "stef", nell2, 8, INTEL_CLX_18, num_threads=4,
            tensor_name="nell-2", exec_backend="serial",
        )
        threaded = profile_method(
            "stef", nell2, 8, INTEL_CLX_18, num_threads=4,
            tensor_name="nell-2", exec_backend="threads",
        )
        for a, b in zip(serial.levels, threaded.levels):
            assert a.categories == b.categories
            assert a.traffic == b.traffic
            assert a.flops == b.flops
