"""Extension: rank sweep of the memoization decision.

The paper evaluates only R ∈ {32, 64}; the model's inputs scale
differently with R (memo traffic ∝ R, structure traffic constant,
cache-residency boundaries move), so the *decision* can flip with rank.
This bench sweeps R ∈ {8..128} on three decision-sensitive tensors and
records the chosen configuration and its predicted traffic per non-zero —
the decision-boundary picture Table II only samples twice.
"""

import pytest

from common import bench_tensor, emit
from repro.analysis.experiments import scale_for_tensor
from repro.core import plan_decomposition
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor

RANKS = (8, 16, 32, 64, 128)
TENSORS = ("uber", "vast-2015-mc1-3d", "delicious-4d")


def test_rank_sweep(benchmark):
    def run():
        rows = {}
        for name in TENSORS:
            t = bench_tensor(name, nnz=8000)
            machine = INTEL_CLX_18.with_cache_scale(scale_for_tensor(t, name))
            csf = CsfTensor.from_coo(t)
            per_rank = {}
            for rank in RANKS:
                decision = plan_decomposition(csf, rank, machine)
                per_rank[rank] = (
                    decision.plan.save_levels,
                    decision.swap_last_two,
                    decision.best.predicted_traffic / t.nnz,
                )
            rows[name] = per_rank
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Rank sweep of the model-chosen configuration (Intel, scaled cache)"]
    for name, per_rank in rows.items():
        lines.append(f"\n{name}:")
        for rank, (save, swap, tpn) in per_rank.items():
            lines.append(
                f"  R={rank:4d}  save={list(save)!s:10} "
                f"swap={'yes' if swap else 'no ':3}  "
                f"traffic/nnz={tpn:8.1f}"
            )
    emit("rank_sweep.txt", "\n".join(lines))

    # Traffic per nnz grows with R for every tensor (more columns moved).
    for name, per_rank in rows.items():
        costs = [per_rank[r][2] for r in RANKS]
        assert all(a < b for a, b in zip(costs, costs[1:])), name
    # uber never memoizes its big partial, at any rank (Section IV-A).
    d_uber = 4
    for rank in RANKS:
        assert (d_uber - 2) not in rows["uber"][rank][0]
