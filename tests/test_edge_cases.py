"""Edge-case coverage across the stack: tiny tensors, degenerate shapes,
threads backend at the facade level, 128-bit ALTO, 2-D paths."""

import numpy as np
import pytest

from repro.baselines import ALL_BACKENDS, Splatt2
from repro.core import MemoizedMttkrp, SAVE_NONE, Stef, Stef2
from repro.ops import mttkrp_dense
from repro.tensor import AltoTensor, CooTensor, CsfTensor, random_tensor
from tests.conftest import make_factors


class TestTinyTensors:
    def test_single_nonzero(self):
        t = CooTensor.from_arrays(
            np.array([[2], [1], [0]]), np.array([3.5]), shape=(4, 3, 2)
        )
        fac = make_factors(t.shape, 2, seed=0)
        dense = t.to_dense()
        engine = MemoizedMttkrp(CsfTensor.from_coo(t), 2, num_threads=4)
        for mode, res in engine.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))

    def test_rank_one(self, coo3):
        fac = make_factors(coo3.shape, 1, seed=1)
        engine = MemoizedMttkrp(CsfTensor.from_coo(coo3), 1, num_threads=2)
        dense = coo3.to_dense()
        for mode, res in engine.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))

    def test_more_threads_than_nonzeros(self):
        t = random_tensor((5, 4, 3), nnz=4, seed=2)
        fac = make_factors(t.shape, 2, seed=3)
        dense = t.to_dense()
        engine = MemoizedMttkrp(CsfTensor.from_coo(t), 2, num_threads=16)
        for mode, res in engine.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))

    def test_mode_of_length_one(self):
        t = random_tensor((1, 6, 5), nnz=20, seed=4)
        fac = make_factors(t.shape, 2, seed=5)
        dense = t.to_dense()
        s = Stef(t, 2, num_threads=3)
        for mode, res in s.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))


class TestTwoDimensional:
    """2-D CPD is sparse matrix factorization; the machinery must degrade
    gracefully (no swap decision, single memo-free plan)."""

    def test_stef_on_matrix(self):
        t = random_tensor((12, 9), nnz=40, seed=6)
        fac = make_factors(t.shape, 3, seed=7)
        dense = t.to_dense()
        s = Stef(t, 3, num_threads=2)
        assert s.plan.save_levels == ()
        for mode, res in s.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))

    def test_als_on_matrix(self):
        from repro.cpd import cp_als

        t = random_tensor((10, 8), nnz=60, seed=8)
        res = cp_als(t, 2, engine=Stef(t, 2), max_iters=4, tol=0)
        assert len(res.fits) == 4


class TestThreadsBackendFacades:
    def test_stef_threads_backend(self, coo4, factors4):
        dense = coo4.to_dense()
        serial = Stef(coo4, 4, num_threads=3, exec_backend="serial")
        threaded = Stef(coo4, 4, num_threads=3, exec_backend="threads")
        rs = serial.iteration_results(factors4)
        rt = threaded.iteration_results(factors4)
        for (m1, a), (m2, b) in zip(rs, rt):
            assert m1 == m2
            assert np.allclose(a, b)
            assert np.allclose(a, mttkrp_dense(dense, factors4, m1))

    def test_stef2_threads_backend(self, coo4, factors4):
        s = Stef2(coo4, 4, num_threads=3, exec_backend="threads")
        dense = coo4.to_dense()
        s.mttkrp_level(factors4, 0)
        for lvl in range(coo4.ndim):
            res = s.mttkrp_level(factors4, lvl)
            assert np.allclose(res, mttkrp_dense(dense, factors4, s.mode_order[lvl]))


class TestWideAlto:
    def test_128bit_tensor_mttkrp(self):
        """Mode lengths forcing >64 linearization bits exercise the
        object-dtype pathway end to end."""
        shape = (2**22, 2**22, 2**22)  # 66 bits total
        rng = np.random.default_rng(9)
        idx = np.vstack([rng.integers(0, s, 30) for s in shape]).astype(np.int64)
        t = CooTensor.from_arrays(idx, rng.standard_normal(30), shape)
        at = AltoTensor.from_coo(t)
        assert at.index_bits == 128
        parts = at.partitions(4)
        assert parts[-1][1] == t.nnz
        # MTTKRP against the COO reference (dense is too large).
        from repro.baselines import AltoBackend
        from repro.ops import mttkrp_coo_reference

        fac = [rng.standard_normal((256, 2)) for _ in shape]
        # Factor matrices only need to cover the appearing indices; remap
        # coordinates into a compact range first.
        compact_idx = np.vstack(
            [np.unique(idx[m], return_inverse=True)[1] for m in range(3)]
        )
        tc = CooTensor.from_arrays(compact_idx, t.values, (256, 256, 256))
        b = AltoBackend(tc, 2, num_threads=2)
        for lvl in range(3):
            assert np.allclose(
                b.mttkrp_level(fac, lvl), mttkrp_coo_reference(tc, fac, lvl)
            )


class TestSplatt2Coverage:
    @pytest.mark.parametrize("fixture", ["coo3", "coo5"])
    def test_other_dims(self, request, fixture):
        t = request.getfixturevalue(fixture)
        fac = make_factors(t.shape, 2, seed=10)
        dense = t.to_dense()
        b = Splatt2(t, 2, num_threads=3)
        for lvl in range(t.ndim):
            assert np.allclose(
                b.mttkrp_level(fac, lvl), mttkrp_dense(dense, fac, lvl)
            )


class TestBackendsOnFiveD:
    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_all_backends_5d(self, coo5, name):
        fac = make_factors(coo5.shape, 2, seed=11)
        dense = coo5.to_dense()
        b = ALL_BACKENDS[name](coo5, 2, num_threads=3)
        for lvl in range(coo5.ndim):
            res = b.mttkrp_level(fac, lvl)
            assert np.allclose(
                res, mttkrp_dense(dense, fac, b.mode_order[lvl])
            ), (name, lvl)
