"""``flow.traffic-conformance`` — every kernel array access is charged.

The paper's headline artifact is *counted* memory traffic that matches
the Section IV-C model; an ndarray access no :class:`~repro.parallel.
counters.TrafficCounter` charge accounts for silently under-reports the
measured channel and the Fig. 3/4 comparison drifts.  This rule walks
every function in the kernel modules (see
:data:`repro.lint.rules.hot_path.KERNEL_PATH_MARKERS`) and requires each
access site to be **covered**:

* *intra-procedurally* — dominated or post-dominated by a statement that
  charges a canonical category, either directly or by calling (or
  dispatching to, via ``pool.map``) a helper that transitively charges; or
* *externally* — every analyzed call site of the enclosing function is
  itself covered in its caller (the ``ops/partial.py`` pattern: pure
  helpers bracketed by the caller's charges).

Anything else is a finding.  The per-kernel transitive "charged
categories" summaries the same analysis produces are cross-checked
against observed trace span deltas in ``tests/test_lint_flow.py``.
"""

from __future__ import annotations

from typing import Iterator

from ..framework import Finding, ProjectContext, Rule, register

__all__ = ["TrafficConformanceRule"]


@register
class TrafficConformanceRule(Rule):
    id = "flow.traffic-conformance"
    description = (
        "kernel ndarray accesses must be dominated or post-dominated by a "
        "TrafficCounter charge, directly or through helper calls"
    )
    paper_ref = "Section IV-C (counted traffic matches the model)"
    scope = "project"

    #: Construction is not a kernel execution path: the tracer's kernel
    #: spans never bracket ``__init__``, so setup-time writes (CSF/plan
    #: assembly) are outside the counted-traffic contract by design.
    SETUP_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = project.analysis
        ext_covered = analysis.externally_covered()
        for info in analysis.kernel_functions():
            if info.name in self.SETUP_METHODS:
                continue
            uncovered = analysis.uncovered_accesses(info.qname)
            if not uncovered or info.qname in ext_covered:
                continue
            short = info.qname[len(info.module) + 1 :] or info.name
            for site in uncovered:
                yield info.ctx.finding(
                    self.id,
                    site.node,
                    f"uncounted ndarray {site.kind} `{site.target}[...]` in "
                    f"kernel `{short}`: no TrafficCounter charge dominates or "
                    "post-dominates it (directly or via helpers) and no "
                    "analyzed caller accounts for it; charge a "
                    "CANONICAL_TRAFFIC_CATEGORIES category on the same path "
                    "or hoist the accounting into the caller",
                )
