"""Tests for ALS checkpoint/resume."""

import os

import numpy as np
import pytest

from repro.baselines import SplattAll
from repro.cpd import cp_als
from repro.tensor import low_rank_tensor


@pytest.fixture
def workload():
    return low_rank_tensor((10, 9, 8), rank=2, nnz=500, noise=0.1, seed=0)


class TestCheckpoint:
    def test_checkpoint_written(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path, checkpoint_every=2,
        )
        assert os.path.exists(path)
        with np.load(path) as data:
            assert int(data["iteration"]) == 4
            assert "factor_0" in data and "factor_2" in data

    def test_resume_continues_trajectory(self, workload, tmp_path):
        """Run 6 iterations straight vs 3 + resume 3: identical final
        factors (the checkpoint captures the full ALS state)."""
        path = str(tmp_path / "ck.npz")
        straight = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=3,
        )
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            seed=3, checkpoint_path=path, checkpoint_every=3,
        )
        resumed = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=999,  # ignored: factors come from the checkpoint
            checkpoint_path=path, resume=True,
        )
        assert resumed.iterations == 6  # cumulative across the resume
        assert len(resumed.seconds_per_iteration) == 3  # this run's share
        for a, b in zip(straight.model.factors, resumed.model.factors):
            assert np.allclose(a, b, atol=1e-10)

    def test_resume_without_path_raises(self, workload):
        with pytest.raises(ValueError, match="checkpoint_path"):
            cp_als(workload, 2, engine=SplattAll(workload, 2), resume=True)

    def test_resume_missing_file_starts_fresh(self, workload, tmp_path):
        path = str(tmp_path / "absent.npz")
        res = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 2

    def test_resume_mismatched_rank_raises(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="does not match"):
            cp_als(
                workload, 5, engine=SplattAll(workload, 5), max_iters=2,
                tol=0, checkpoint_path=path, resume=True,
            )

    def test_resume_past_max_iters_is_noop(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        finished = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path,
        )
        res = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 4  # the checkpointed count, nothing new
        assert res.seconds_per_iteration == []
        # Regression: the returned model must BE the checkpointed model —
        # before the fix λ came back as ones.
        assert np.array_equal(res.model.weights, finished.model.weights)
        for a, b in zip(res.model.factors, finished.model.factors):
            assert np.array_equal(a, b)


class TestCheckpointRoundTrip:
    """Satellite coverage: λ preservation, no-op file semantics, and
    monotone cumulative iteration counts across resume chains."""

    def test_resume_preserves_weights_mid_run(self, workload, tmp_path):
        """Straight 6-iteration λ == 3 + resume-3 λ: the weights are part
        of the resumed state, not recomputed from ones."""
        path = str(tmp_path / "ck.npz")
        straight = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=3,
        )
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            seed=3, checkpoint_path=path, checkpoint_every=3,
        )
        resumed = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert np.allclose(
            resumed.model.weights, straight.model.weights, atol=1e-10
        )

    def test_finished_run_resume_leaves_checkpoint_untouched(
        self, workload, tmp_path
    ):
        """Re-invoking a finished run must not rewrite the file at all
        (the old post-loop write clobbered weights with λ = ones)."""
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path,
        )
        before = os.stat(path).st_mtime_ns
        with np.load(path) as data:
            weights_before = data["weights"].copy()
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert os.stat(path).st_mtime_ns == before
        with np.load(path) as data:
            assert np.array_equal(data["weights"], weights_before)
            assert int(data["iteration"]) == 4

    def test_cumulative_iterations_monotone_across_resumes(
        self, workload, tmp_path
    ):
        """A resume chain 2 -> 4 -> 6 reports strictly increasing
        cumulative counts, each matching the checkpoint's record."""
        path = str(tmp_path / "ck.npz")
        counts = []
        for cap in (2, 4, 6):
            res = cp_als(
                workload, 2, engine=SplattAll(workload, 2), max_iters=cap,
                tol=0, checkpoint_path=path, checkpoint_every=100,
                resume=os.path.exists(path),
            )
            counts.append(res.iterations)
            with np.load(path) as data:
                assert int(data["iteration"]) == res.iterations
        assert counts == [2, 4, 6]


class TestAtomicCheckpointWrites:
    """The checkpoint file must appear atomically (tmp + rename) so a
    killed job can never leave a truncated .npz behind, and missing
    parent directories are created rather than crashing the run."""

    def test_parent_directory_created(self, workload, tmp_path):
        path = str(tmp_path / "spool" / "jobs" / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path, checkpoint_every=1,
        )
        assert os.path.exists(path)
        with np.load(path) as data:
            assert int(data["iteration"]) == 2

    def test_no_temp_file_left_behind(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            checkpoint_path=path, checkpoint_every=1,
        )
        leftovers = [p for p in os.listdir(tmp_path) if p != "ck.npz"]
        assert leftovers == []

    def test_every_observed_checkpoint_is_complete(self, workload, tmp_path, monkeypatch):
        """Snapshot the checkpoint path at every write numpy performs:
        whenever the final path exists it must load as a complete model
        (rename is the only way content appears under the final name)."""
        path = tmp_path / "ck.npz"
        observed = []
        real_savez = np.savez_compressed

        def spying_savez(target, **arrays):
            # While the new checkpoint is being serialized, the final
            # path must hold either nothing or the previous complete one.
            if path.exists():
                with np.load(str(path)) as data:
                    observed.append(int(data["iteration"]))
            assert not str(getattr(target, "name", target)).endswith("ck.npz"), (
                "checkpoint serialized directly into the final path"
            )
            return real_savez(target, **arrays)

        monkeypatch.setattr(np, "savez_compressed", spying_savez)
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=str(path), checkpoint_every=1,
        )
        # Writes at iterations 1..4 plus the end-of-run write; during
        # write k the visible file held the previous complete checkpoint.
        assert observed == [1, 2, 3, 4]
        with np.load(str(path)) as data:
            assert int(data["iteration"]) == 4

    def test_interrupted_write_preserves_previous_checkpoint(
        self, workload, tmp_path, monkeypatch
    ):
        """A crash mid-serialization leaves the previous complete
        checkpoint in place (and no partial file under the final name)."""
        path = tmp_path / "ck.npz"
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=str(path), checkpoint_every=1,
        )
        with np.load(str(path)) as data:
            iteration_before = int(data["iteration"])
            weights_before = data["weights"].copy()

        real_savez = np.savez_compressed

        def crashing_savez(target, **arrays):
            real_savez(target, **arrays)  # bytes hit the temp file...
            raise KeyboardInterrupt  # ...then the worker dies pre-rename

        monkeypatch.setattr(np, "savez_compressed", crashing_savez)
        with pytest.raises(KeyboardInterrupt):
            cp_als(
                workload, 2, engine=SplattAll(workload, 2), max_iters=4,
                tol=0, checkpoint_path=str(path), checkpoint_every=1,
                resume=True,
            )
        with np.load(str(path)) as data:
            assert int(data["iteration"]) == iteration_before
            assert np.array_equal(data["weights"], weights_before)
        assert [p for p in os.listdir(tmp_path) if p != "ck.npz"] == []
