"""Race/stress harness for the ``threads`` and ``processes`` backends.

The paper's conflict-free scheme only earns its name if real concurrency
changes *nothing*: every MTTKRP output must be bit-identical between the
``serial`` backend and both concurrent backends (``threads`` and the
shared-memory ``processes`` pool), and the merged per-thread traffic
shards must equal the serial counter's tallies exactly — not approximately.
This module sweeps (seed, thread-count) combinations (the CI acceptance
floor is 20), hits the boundary-sharing edge cases at every CSF level, and
exercises the :class:`ReplicatedArray` lifecycle across repeated kernel
invocations.

``scripts/stress_threads.py`` runs the same checks standalone at
configurable scale.
"""

import numpy as np
import pytest

from repro.core import MemoPlan, MemoizedMttkrp, SAVE_NONE, enumerate_plans
from repro.ops import mttkrp_dense
from repro.parallel import (
    ReplicatedArray,
    ShardedTrafficCounter,
    SimulatedPool,
    TrafficCounter,
    nnz_partition,
    slice_partition,
)
from repro.tensor import CooTensor, CsfTensor, random_tensor
from tests.conftest import make_factors

SEEDS = range(5)
THREAD_COUNTS = (2, 3, 5, 8)


def _run(csf, factors, rank, threads, backend, plan, iters=1):
    """One engine run: per-level outputs + the counter snapshot."""
    counter = TrafficCounter(cache_elements=4096)
    engine = MemoizedMttkrp(
        csf, rank, plan=plan, num_threads=threads,
        exec_backend=backend, counter=counter,
    )
    try:
        outs = []
        for _ in range(iters):
            outs = [res for _, res in engine.iteration_results(factors)]
        return outs, counter.snapshot()
    finally:
        engine.close()


class TestSerialThreadsEquivalence:
    """The acceptance sweep: ≥ 20 (seed, thread-count) combinations,
    run for both concurrent backends against the serial oracle."""

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_outputs_bit_identical_and_traffic_exact(
        self, seed, threads, backend
    ):
        tensor = random_tensor((13, 9, 7, 5), nnz=350 + 13 * seed, seed=seed)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 4, seed=seed)
        plan = MemoPlan((1,)) if seed % 2 else MemoPlan((1, 2))
        serial_out, serial_snap = _run(csf, factors, 4, threads, "serial", plan)
        conc_out, conc_snap = _run(csf, factors, 4, threads, backend, plan)
        for a, b in zip(serial_out, conc_out):
            assert np.array_equal(a, b)  # bit-identical, not allclose
        assert serial_snap == conc_snap  # exact, category by category

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_repeated_iterations_stay_identical(self, threads, backend):
        """Buffer reuse across ALS iterations (the ReplicatedArray
        lifecycle) must not leak state between invocations."""
        tensor = random_tensor((11, 8, 6), nnz=300, seed=3)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 3, seed=3)
        once, _ = _run(csf, factors, 3, threads, backend, MemoPlan((1,)))
        thrice, _ = _run(
            csf, factors, 3, threads, backend, MemoPlan((1,)), iters=3
        )
        for a, b in zip(once, thrice):
            assert np.array_equal(a, b)


class TestReplicatedArrayLifecycle:
    def test_mode0_twice_does_not_grow(self):
        """Satellite regression: without the reset lifecycle, re-running
        mode0 re-merged the stale stripes and the result doubled."""
        tensor = random_tensor((10, 8, 6), nnz=200, seed=7)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 3, seed=7)
        dense = tensor.to_dense()
        engine = MemoizedMttkrp(csf, 3, plan=MemoPlan((1,)), num_threads=3)
        first = engine.mode0(factors)
        second = engine.mode0(factors)
        assert np.array_equal(first, second)
        assert np.allclose(
            second, mttkrp_dense(dense, factors, csf.mode_order[0])
        )

    def test_memo_not_double_counted_on_reuse(self):
        tensor = random_tensor((10, 8, 6), nnz=200, seed=8)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 3, seed=8)
        engine = MemoizedMttkrp(csf, 3, plan=MemoPlan((1,)), num_threads=4)
        engine.mode0(factors)
        memo_first = engine.memo[1].copy()
        engine.mode0(factors)
        assert np.array_equal(engine.memo[1], memo_first)


class TestBoundaryConflicts:
    """Boundary-node sharing at every level under real threading."""

    def _chain_tensor(self):
        """A tensor whose nnz partition must cut through nodes at every
        level: a single root slice holding one long run of non-zeros plus
        enough structure at the deeper levels."""
        rng = np.random.default_rng(0)
        n = 240
        i0 = np.zeros(n, dtype=np.int64)          # one root slice
        i1 = np.repeat(np.arange(4), n // 4)      # 4 mid fibers
        i2 = np.tile(np.arange(n // 4), 4)        # long leaf runs
        vals = rng.standard_normal(n)
        return CooTensor.from_arrays(
            np.stack([i0, i1, i2], axis=0), vals, (1, 4, n // 4)
        )

    def test_every_level_has_shared_boundaries(self):
        tensor = self._chain_tensor()
        csf = CsfTensor.from_coo(tensor, (0, 1, 2))
        part = nnz_partition(csf, 6)
        shared = part.shared_boundary_nodes(csf)
        for level, nodes in enumerate(shared):
            assert nodes, f"expected shared boundary nodes at level {level}"

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_boundary_conflicts_resolved_exactly(self, backend):
        tensor = self._chain_tensor()
        csf = CsfTensor.from_coo(tensor, (0, 1, 2))
        factors = make_factors(tensor.shape, 4, seed=1)
        dense = tensor.to_dense()
        engine = MemoizedMttkrp(
            csf, 4, plan=MemoPlan((1,)), num_threads=6, exec_backend=backend
        )
        try:
            for mode, result in engine.iteration_results(factors):
                assert np.allclose(result, mttkrp_dense(dense, factors, mode))
        finally:
            engine.close()

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_serial_identical_on_boundary_tensor(self, backend):
        tensor = self._chain_tensor()
        csf = CsfTensor.from_coo(tensor, (0, 1, 2))
        factors = make_factors(tensor.shape, 4, seed=2)
        s, snap_s = _run(csf, factors, 4, 6, "serial", MemoPlan((1,)))
        t, snap_t = _run(csf, factors, 4, 6, backend, MemoPlan((1,)))
        for a, b in zip(s, t):
            assert np.array_equal(a, b)
        assert snap_s == snap_t


class TestDegenerateSchedules:
    """threads backend beyond the smoke test: starved and empty ranges."""

    def test_more_threads_than_root_slices(self):
        # 2 root slices, 8 threads: the slice deal idles 6 of them.
        tensor = random_tensor((2, 9, 8), nnz=160, seed=4)
        csf = CsfTensor.from_coo(tensor, (0, 1, 2))
        assert csf.fiber_counts[0] <= 2
        factors = make_factors(tensor.shape, 3, seed=4)
        dense = tensor.to_dense()
        for backend in ("serial", "threads", "processes"):
            engine = MemoizedMttkrp(
                csf, 3, plan=SAVE_NONE, num_threads=8,
                partition="slice", exec_backend=backend,
            )
            try:
                for mode, result in engine.iteration_results(factors):
                    assert np.allclose(
                        result, mttkrp_dense(dense, factors, mode)
                    )
            finally:
                engine.close()

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_more_threads_than_nonzeros(self, backend):
        # 5 non-zeros, 12 threads: most leaf ranges are empty.
        tensor = random_tensor((6, 5, 4), nnz=5, seed=5)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 2, seed=5)
        dense = tensor.to_dense()
        s, snap_s = _run(csf, factors, 2, 12, "serial", SAVE_NONE)
        t, snap_t = _run(csf, factors, 2, 12, backend, SAVE_NONE)
        for a, b, (mode, _) in zip(
            s, t, MemoizedMttkrp(csf, 2, num_threads=1).iteration_results(factors)
        ):
            assert np.array_equal(a, b)
            assert np.allclose(a, mttkrp_dense(dense, factors, mode))
        assert snap_s == snap_t

    def test_empty_thread_ranges_charge_nothing(self):
        tensor = random_tensor((6, 5, 4), nnz=5, seed=6)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 2, seed=6)
        counter = TrafficCounter()
        engine = MemoizedMttkrp(
            csf, 2, num_threads=12, exec_backend="threads", counter=counter
        )
        engine.mode0(factors)
        totals = engine.shards.per_thread_totals()
        empty = [
            th for th in range(12)
            if engine.partition.per_thread_leaf_counts()[th] == 0
        ]
        assert empty  # the schedule really is starved
        for th in empty:
            assert totals[th] == 0.0


class TestRaceSanitizer:
    """REPRO_SANITIZE=1: view() rejects cross-thread overlapping buffer
    slots, extending the always-on same-thread guard."""

    def test_legal_boundary_sharing_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rep = ReplicatedArray(10, 2, 3)
        # Adjacent threads share exactly one boundary node — the scheme's
        # legal overlap; buffer slots stay disjoint after the +th shift.
        rep.view(0, 0, 4)
        rep.view(1, 3, 8)
        rep.view(2, 7, 10)
        assert rep.merge().shape == (10, 2)

    def test_cross_thread_slot_overlap_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rep = ReplicatedArray(10, 2, 3)
        rep.view(0, 0, 4)  # buffer slots [0, 4)
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            rep.view(1, 2, 8)  # buffer slots [3, 9): slot 3 races

    def test_non_adjacent_thread_overlap_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rep = ReplicatedArray(12, 2, 4)
        rep.view(0, 0, 5)  # slots [0, 5)
        with pytest.raises(ValueError, match="cross-thread write race"):
            rep.view(3, 1, 4)  # slots [4, 7): slot 4 races

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        rep = ReplicatedArray(10, 2, 3)
        rep.view(0, 0, 4)
        rep.view(1, 2, 8)  # a real race, but the check costs O(views²)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        rep0 = ReplicatedArray(10, 2, 3)
        rep0.view(0, 0, 4)
        rep0.view(1, 2, 8)

    def test_same_thread_guard_still_active(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rep = ReplicatedArray(10, 2, 2)
        rep.view(0, 0, 4)
        with pytest.raises(ValueError, match="overlaps its earlier"):
            rep.view(0, 2, 6)

    def test_reset_rearms_cleanly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rep = ReplicatedArray(10, 2, 2)
        rep.view(0, 0, 6)
        rep.reset()
        rep.view(1, 0, 6)  # would race with thread 0's pre-reset view

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_shipped_kernels_are_race_free_under_sanitizer(
        self, monkeypatch, backend
    ):
        """The whole engine (all plans' mode0 sweeps, buffer reuse across
        iterations) runs clean with the sanitizer armed — the shipped
        partitioning really does produce conflict-free view ranges.
        Under the processes backend the coordinator records exactly the
        ranges the workers wrote, so the sanitizer guards it too."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        tensor = random_tensor((13, 9, 7), nnz=400, seed=11)
        csf = CsfTensor.from_coo(tensor)
        factors = make_factors(tensor.shape, 4, seed=11)
        dense = tensor.to_dense()
        engine = MemoizedMttkrp(
            csf, 4, plan=MemoPlan((1,)), num_threads=5, exec_backend=backend
        )
        try:
            for _ in range(2):  # exercises the reset lifecycle too
                for mode, result in engine.iteration_results(factors):
                    assert np.allclose(
                        result, mttkrp_dense(dense, factors, mode)
                    )
        finally:
            engine.close()


class TestShardedCounterUnderRealThreads:
    def test_concurrent_shard_charging_is_exact(self):
        """Many tiny concurrent charges — the pattern that loses updates
        on a single shared counter — must merge to the exact total when
        each thread owns a shard."""
        threads, per_thread = 8, 500
        sharded = ShardedTrafficCounter(threads)
        pool = SimulatedPool(threads, "threads")

        def body(th):
            shard = sharded.shard(th)
            for i in range(per_thread):
                shard.read(1.0, "structure")
                shard.write(1.0, "output")
                shard.flop(2.0, "sweep")
            return th

        assert pool.map(body) == list(range(threads))
        merged = sharded.merge()
        assert merged.reads == threads * per_thread
        assert merged.writes == threads * per_thread
        assert merged.flops == 2 * threads * per_thread
        assert merged.by_category["r:structure"] == threads * per_thread

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_all_plans_all_partitions_smoke(self, backend):
        """Cross product of plans × partitions under each concurrent
        backend agrees with the dense oracle (the old suite only smoked
        one)."""
        tensor = random_tensor((7, 6, 5, 4), nnz=180, seed=9)
        dense = tensor.to_dense()
        factors = make_factors(tensor.shape, 2, seed=9)
        csf = CsfTensor.from_coo(tensor)
        for plan in enumerate_plans(tensor.ndim):
            for partition in ("nnz", "slice"):
                engine = MemoizedMttkrp(
                    csf, 2, plan=plan, num_threads=4,
                    partition=partition, exec_backend=backend,
                )
                try:
                    for mode, result in engine.iteration_results(factors):
                        assert np.allclose(
                            result, mttkrp_dense(dense, factors, mode)
                        ), (plan, partition, mode)
                finally:
                    engine.close()
