"""Factor matrix initialization for CP-ALS.

Two standard strategies:

* :func:`random_init` — i.i.d. uniform(0,1) entries (SPLATT's default);
  deterministic per seed so backend-comparison tests can demand identical
  ALS trajectories.
* :func:`hosvd_init` — leading left singular vectors of each sparse mode
  unfolding (a HOSVD-style warm start), falling back to random columns
  when a mode is too small to supply ``R`` singular vectors.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..tensor.coo import CooTensor

__all__ = ["random_init", "hosvd_init"]


def random_init(
    shape: Sequence[int], rank: int, seed: int = 0
) -> List[np.ndarray]:
    """Uniform(0,1) factor matrices, one per mode, deterministic in
    ``seed``."""
    rng = np.random.default_rng(seed)
    return [rng.random((int(n), rank)) for n in shape]


def _unfold_csr(tensor: CooTensor, mode: int) -> sp.csr_matrix:
    """Sparse mode-``mode`` unfolding as CSR (C-order column indexing,
    matching :func:`repro.ops.dense_ref.unfold`)."""
    rows = tensor.indices[mode]
    other = [m for m in range(tensor.ndim) if m != mode]
    cols = np.zeros(tensor.nnz, dtype=np.int64)
    stride = 1
    for m in reversed(other):
        cols += tensor.indices[m] * stride
        stride *= tensor.shape[m]
    n_cols = int(stride)
    return sp.csr_matrix(
        (tensor.values, (rows, cols)), shape=(tensor.shape[mode], n_cols)
    )


def hosvd_init(
    tensor: CooTensor, rank: int, seed: int = 0
) -> List[np.ndarray]:
    """HOSVD-style initialization: ``rank`` leading left singular vectors
    of each mode unfolding, padded with random columns where the unfolding
    cannot supply that many (``rank >= min(matrix dims)``)."""
    rng = np.random.default_rng(seed)
    factors: List[np.ndarray] = []
    for mode in range(tensor.ndim):
        n = tensor.shape[mode]
        unf = _unfold_csr(tensor, mode)
        k = min(rank, min(unf.shape) - 1)
        if k < 1:
            factors.append(rng.random((n, rank)))
            continue
        try:
            u, _s, _vt = spla.svds(unf, k=k)
            u = u[:, ::-1]  # svds returns ascending singular values
        except Exception:
            factors.append(rng.random((n, rank)))
            continue
        if k < rank:
            pad = rng.random((n, rank - k))
            u = np.hstack([u, pad])
        factors.append(np.ascontiguousarray(u))
    return factors
